#include "support.hpp"

#include <cctype>
#include <cstdio>
#include <fstream>

#include "common/env.hpp"

namespace caesar::bench {

analysis::ExperimentSetup setup_from_env() {
  return analysis::paper_setup(full_scale_requested(), experiment_seed());
}

void print_banner(const std::string& figure,
                  const analysis::ExperimentSetup& setup,
                  const trace::Trace& trace,
                  const core::CaesarConfig& geometry) {
  std::printf("== %s ==\n", figure.c_str());
  std::printf(
      "scale=%.2f of paper  flows(Q)=%llu  packets(n)=%llu  mean=%.2f\n",
      setup.scale,
      static_cast<unsigned long long>(trace.num_flows()),
      static_cast<unsigned long long>(trace.num_packets()),
      trace.mean_flow_size());
  const auto g = analysis::describe(geometry);
  std::printf(
      "geometry: M=%u y=%llu  L=%llu bits=%u (SRAM %.2f KB)  k=%zu\n\n",
      geometry.cache_entries,
      static_cast<unsigned long long>(geometry.entry_capacity),
      static_cast<unsigned long long>(geometry.num_counters),
      geometry.counter_bits, g.sram_kb, g.k);
}

bool export_csv(const std::string& name, const Table& table) {
  const auto dir = csv_export_dir();
  if (!dir) return false;
  std::string slug;
  for (char c : name)
    slug.push_back(std::isalnum(static_cast<unsigned char>(c))
                       ? static_cast<char>(
                             std::tolower(static_cast<unsigned char>(c)))
                       : '_');
  std::ofstream out(*dir + "/" + slug + ".csv", std::ios::trunc);
  if (!out) return false;
  out << table.to_csv();
  return true;
}

double avg_error_at_least(const analysis::EvalResult& result,
                          Count min_size) {
  double total = 0.0;
  std::uint64_t flows = 0;
  for (const auto& bin : result.bins) {
    if (bin.lo < min_size) continue;
    total += bin.avg_rel_error * static_cast<double>(bin.flows);
    flows += bin.flows;
  }
  return flows ? total / static_cast<double>(flows) : 0.0;
}

void print_accuracy_panels(const std::string& label,
                           const analysis::EvalResult& result,
                           std::size_t scatter_rows) {
  std::printf("--- %s ---\n", label.c_str());

  Table scatter({"actual", "estimated"});
  const std::size_t stride =
      result.scatter.empty()
          ? 1
          : std::max<std::size_t>(1, result.scatter.size() / scatter_rows);
  for (std::size_t i = 0; i < result.scatter.size(); i += stride)
    scatter.add_row({std::to_string(result.scatter[i].actual),
                     format_double(result.scatter[i].estimated, 1)});
  std::printf("estimated vs actual (sampled %zu of %zu flows):\n%s\n",
              scatter.rows(), static_cast<std::size_t>(result.flows),
              scatter.to_ascii().c_str());

  Table bins({"size_bin", "flows", "avg_rel_error"});
  for (const auto& b : result.bins) {
    // Built via append: GCC 12's -O3 -Wrestrict misfires on the
    // char* + string&& overload.
    std::string bin = "[";
    bin += std::to_string(b.lo);
    bin += ",";
    bin += std::to_string(b.hi);
    bin += ")";
    bins.add_row(
        {bin, std::to_string(b.flows), format_double(b.avg_rel_error, 4)});
  }
  std::printf("average relative error vs actual flow size:\n%s\n",
              bins.to_ascii().c_str());

  if (csv_export_dir()) {
    Table full_scatter({"actual", "estimated"});
    for (const auto& p : result.scatter)
      full_scatter.add_row(
          {std::to_string(p.actual), format_double(p.estimated, 3)});
    export_csv(label + " scatter", full_scatter);
    export_csv(label + " bins", bins);
  }

  std::printf("%s: avg relative error = %.2f%% (%.2f%% on flows >= 4)  "
              "bias = %+.3f  rmse = %.2f\n\n",
              label.c_str(), 100.0 * result.avg_relative_error,
              100.0 * avg_error_at_least(result, 4), result.bias,
              result.rmse);
}

}  // namespace caesar::bench
