// Ablation — cache size M. Shows the role of the on-chip cache: more
// entries -> fewer replacement evictions -> fewer off-chip accesses
// (time), while accuracy stays roughly flat (evictions are lossless).
#include <cstdio>

#include "memsim/cost_model.hpp"
#include "support.hpp"

int main() {
  using namespace caesar;
  const auto setup = bench::setup_from_env();
  const auto t = trace::generate_trace(setup.trace);
  bench::print_banner("Ablation: cache entries (M)", setup, t,
                      setup.caesar);

  const auto model = memsim::virtex7_model();
  Table table({"M", "cache_kb", "csm_err", "sram_accesses", "time_ms"});
  for (double frac : {0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0}) {
    auto cfg = setup.caesar;
    cfg.cache_entries = static_cast<std::uint32_t>(
        std::max(1.0, frac * setup.caesar.cache_entries));
    core::CaesarSketch sketch(cfg);
    bench::feed(t, sketch);
    sketch.flush();
    const auto eval = bench::evaluate_fn(
        t, [&](FlowId f) { return sketch.estimate_csm_raw(f); });
    const auto ops = sketch.op_counts();
    table.add_row({std::to_string(cfg.cache_entries),
                   format_double(sketch.cache_table().memory_kb(), 1),
                   format_double(100.0 * eval.avg_relative_error, 2) + "%",
                   std::to_string(ops.sram_accesses),
                   format_double(model.time_ms(ops), 2)});
  }
  std::printf("%s\n", table.to_ascii().c_str());
  std::printf("Accuracy is cache-size-insensitive (evictions lose nothing; "
              "only eviction *granularity* changes), but off-chip traffic "
              "and\nmodeled time drop as the cache absorbs more of each "
              "flow — the architectural bet of the paper.\n");
  return 0;
}
