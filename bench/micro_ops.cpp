// Micro-benchmarks (google-benchmark): per-operation software costs of
// the hash substrate and the three schemes' update/query paths. These are
// the simulator's own costs (host CPU), complementary to the modeled FPGA
// times of fig8_processing_time.
#include <benchmark/benchmark.h>

#include <array>
#include <vector>

#include "baselines/braids/counter_braids.hpp"
#include "baselines/case/case_sketch.hpp"
#include "baselines/compressed/cedar.hpp"
#include "baselines/compressed/small_active_counter.hpp"
#include "baselines/rcs/rcs_sketch.hpp"
#include "baselines/sampling/space_saving.hpp"
#include "baselines/vhc/virtual_hll.hpp"
#include "cache/cache_table.hpp"
#include "common/random.hpp"
#include "core/caesar_sketch.hpp"
#include "counters/counter_array.hpp"
#include "counters/packed_counter_array.hpp"
#include "hash/classic_hashes.hpp"
#include "hash/index_selector.hpp"
#include "hash/sha1.hpp"
#include "hash/xxhash64.hpp"
#include "trace/anonymize.hpp"
#include "trace/flow_id.hpp"
#include "trace/synthetic.hpp"

namespace {

using namespace caesar;

void BM_Sha1FlowId(benchmark::State& state) {
  std::uint64_t i = 0;
  for (auto _ : state) {
    const auto tuple = trace::synth_tuple(1, i++);
    benchmark::DoNotOptimize(trace::flow_id_of(tuple));
  }
}
BENCHMARK(BM_Sha1FlowId);

void BM_ApHash(benchmark::State& state) {
  const std::string key = "10.1.2.3:443->192.168.0.1:51234/tcp";
  for (auto _ : state) benchmark::DoNotOptimize(hash::ap_hash(key));
}
BENCHMARK(BM_ApHash);

void BM_Xxh64U64(benchmark::State& state) {
  std::uint64_t i = 0;
  for (auto _ : state) benchmark::DoNotOptimize(hash::xxh64_u64(++i, 7));
}
BENCHMARK(BM_Xxh64U64);

void BM_KIndexSelect(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  hash::KIndexSelector sel(k, 50'000, 3);
  std::array<std::uint64_t, hash::KIndexSelector::kMaxK> idx{};
  std::uint64_t flow = 0;
  for (auto _ : state) {
    sel.select(++flow, std::span<std::uint64_t>(idx.data(), k));
    benchmark::DoNotOptimize(idx);
  }
}
BENCHMARK(BM_KIndexSelect)->Arg(1)->Arg(3)->Arg(8);

void BM_CacheProcessHit(benchmark::State& state) {
  cache::CacheTable::Config cfg;
  cfg.num_entries = 1024;
  cfg.entry_capacity = 1'000'000'000;  // never overflow
  cache::CacheTable cache(cfg);
  cache.process(42);
  for (auto _ : state) benchmark::DoNotOptimize(cache.process(42));
}
BENCHMARK(BM_CacheProcessHit);

void BM_CacheProcessChurn(benchmark::State& state) {
  cache::CacheTable::Config cfg;
  cfg.num_entries = 1024;
  cfg.entry_capacity = 54;
  cache::CacheTable cache(cfg);
  Xoshiro256pp rng(1);
  for (auto _ : state)
    benchmark::DoNotOptimize(cache.process(rng.below(100'000)));
}
BENCHMARK(BM_CacheProcessChurn);

void BM_CaesarAdd(benchmark::State& state) {
  core::CaesarConfig cfg;
  cfg.cache_entries = 10'000;
  cfg.entry_capacity = 54;
  cfg.num_counters = 5'000;
  cfg.counter_bits = 15;
  core::CaesarSketch sketch(cfg);
  Xoshiro256pp rng(2);
  for (auto _ : state) sketch.add(rng.below(100'000));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CaesarAdd);

void BM_CaesarAddBatch(benchmark::State& state) {
  // The batched fast path (prefetch + spill queue + coalesced SRAM
  // writes); compare directly against BM_CaesarAdd per item.
  core::CaesarConfig cfg;
  cfg.cache_entries = 10'000;
  cfg.entry_capacity = 54;
  cfg.num_counters = 5'000;
  cfg.counter_bits = 15;
  core::CaesarSketch sketch(cfg);
  Xoshiro256pp rng(2);
  std::vector<FlowId> batch(8192);
  for (auto _ : state) {
    state.PauseTiming();
    for (auto& f : batch) f = rng.below(100'000);
    state.ResumeTiming();
    sketch.add_batch(batch);
  }
  sketch.drain_spill();
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_CaesarAddBatch);

void BM_RcsAdd(benchmark::State& state) {
  baselines::RcsConfig cfg;
  cfg.num_counters = 5'000;
  cfg.counter_bits = 15;
  baselines::RcsSketch sketch(cfg);
  Xoshiro256pp rng(3);
  for (auto _ : state) sketch.add(rng.below(100'000));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RcsAdd);

void BM_CaseAdd(benchmark::State& state) {
  baselines::CaseConfig cfg;
  cfg.cache_entries = 10'000;
  cfg.entry_capacity = 54;
  cfg.num_counters = 100'000;
  cfg.counter_bits = 10;
  baselines::CaseSketch sketch(cfg);
  Xoshiro256pp rng(4);
  for (auto _ : state) sketch.add(rng.below(100'000));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CaseAdd);

void BM_CaesarQueryCsm(benchmark::State& state) {
  core::CaesarConfig cfg;
  cfg.num_counters = 50'000;
  cfg.counter_bits = 15;
  core::CaesarSketch sketch(cfg);
  for (int i = 0; i < 100'000; ++i) sketch.add(static_cast<FlowId>(i % 997));
  sketch.flush();
  std::uint64_t f = 0;
  for (auto _ : state)
    benchmark::DoNotOptimize(sketch.estimate_csm(++f % 997));
}
BENCHMARK(BM_CaesarQueryCsm);

void BM_CaesarQueryMlm(benchmark::State& state) {
  core::CaesarConfig cfg;
  cfg.num_counters = 50'000;
  cfg.counter_bits = 15;
  core::CaesarSketch sketch(cfg);
  for (int i = 0; i < 100'000; ++i) sketch.add(static_cast<FlowId>(i % 997));
  sketch.flush();
  std::uint64_t f = 0;
  for (auto _ : state)
    benchmark::DoNotOptimize(sketch.estimate_mlm(++f % 997));
}
BENCHMARK(BM_CaesarQueryMlm);

void BM_CounterBraidsAdd(benchmark::State& state) {
  baselines::CounterBraidsConfig cfg;
  cfg.layer1_counters = 16'384;
  baselines::CounterBraids cb(cfg);
  Xoshiro256pp rng(5);
  for (auto _ : state) cb.add(rng.below(100'000));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterBraidsAdd);

void BM_VhcAdd(benchmark::State& state) {
  baselines::VhcConfig cfg;
  baselines::VirtualHyperLogLog vhc(cfg);
  Xoshiro256pp rng(6);
  for (auto _ : state) vhc.add(rng.below(100'000));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VhcAdd);

void BM_SacAdd(benchmark::State& state) {
  baselines::SacArray arr(65'536, baselines::SacConfig{}, 7);
  Xoshiro256pp rng(7);
  for (auto _ : state) arr.add(rng.below(100'000));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SacAdd);

void BM_CedarAdd(benchmark::State& state) {
  baselines::CedarArray arr(65'536, 12, 0.1, 8);
  Xoshiro256pp rng(8);
  for (auto _ : state) arr.add(rng.below(100'000));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CedarAdd);

void BM_SpaceSavingAdd(benchmark::State& state) {
  baselines::SpaceSaving ss(1024);
  Xoshiro256pp rng(9);
  for (auto _ : state) ss.add(rng.below(100'000));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpaceSavingAdd);

void BM_CounterArrayAdd(benchmark::State& state) {
  counters::CounterArray a(1u << 20, 15);
  Xoshiro256pp rng(10);
  for (auto _ : state) a.add(rng.below(1u << 20), 1);
}
BENCHMARK(BM_CounterArrayAdd);

void BM_PackedCounterArrayAdd(benchmark::State& state) {
  counters::PackedCounterArray a(1u << 20, 15);
  Xoshiro256pp rng(11);
  for (auto _ : state) a.add(rng.below(1u << 20), 1);
}
BENCHMARK(BM_PackedCounterArrayAdd);

void BM_AnonymizeIp(benchmark::State& state) {
  const trace::PrefixPreservingAnonymizer anon(12);
  std::uint32_t ip = 0x0A000001;
  for (auto _ : state) benchmark::DoNotOptimize(anon.anonymize(++ip));
}
BENCHMARK(BM_AnonymizeIp);

void BM_RcsQueryMlm(benchmark::State& state) {
  // The iterative search the paper calls "extremely slow".
  baselines::RcsConfig cfg;
  cfg.num_counters = 50'000;
  cfg.counter_bits = 15;
  baselines::RcsSketch sketch(cfg);
  for (int i = 0; i < 100'000; ++i) sketch.add(static_cast<FlowId>(i % 997));
  std::uint64_t f = 0;
  for (auto _ : state)
    benchmark::DoNotOptimize(sketch.estimate_mlm(++f % 997));
}
BENCHMARK(BM_RcsQueryMlm);

}  // namespace
