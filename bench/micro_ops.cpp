// Micro-benchmarks (google-benchmark): per-operation software costs of
// the hash substrate and the three schemes' update/query paths. These are
// the simulator's own costs (host CPU), complementary to the modeled FPGA
// times of fig8_processing_time.
#include <benchmark/benchmark.h>

#include <array>
#include <vector>

#include "baselines/braids/counter_braids.hpp"
#include "baselines/case/case_sketch.hpp"
#include "baselines/compressed/cedar.hpp"
#include "baselines/compressed/small_active_counter.hpp"
#include "baselines/rcs/rcs_sketch.hpp"
#include "baselines/sampling/space_saving.hpp"
#include "baselines/vhc/virtual_hll.hpp"
#include "cache/cache_table.hpp"
#include "cache/set_probe.hpp"
#include "cache/simd_dispatch.hpp"
#include "common/aligned_buffer.hpp"
#include "common/random.hpp"
#include "core/caesar_sketch.hpp"
#include "counters/counter_array.hpp"
#include "counters/packed_counter_array.hpp"
#include "hash/classic_hashes.hpp"
#include "hash/index_selector.hpp"
#include "hash/sha1.hpp"
#include "hash/xxhash64.hpp"
#include "trace/anonymize.hpp"
#include "trace/flow_id.hpp"
#include "trace/synthetic.hpp"

namespace {

using namespace caesar;

void BM_Sha1FlowId(benchmark::State& state) {
  std::uint64_t i = 0;
  for (auto _ : state) {
    const auto tuple = trace::synth_tuple(1, i++);
    benchmark::DoNotOptimize(trace::flow_id_of(tuple));
  }
}
BENCHMARK(BM_Sha1FlowId);

void BM_ApHash(benchmark::State& state) {
  const std::string key = "10.1.2.3:443->192.168.0.1:51234/tcp";
  for (auto _ : state) benchmark::DoNotOptimize(hash::ap_hash(key));
}
BENCHMARK(BM_ApHash);

void BM_Xxh64U64(benchmark::State& state) {
  std::uint64_t i = 0;
  for (auto _ : state) benchmark::DoNotOptimize(hash::xxh64_u64(++i, 7));
}
BENCHMARK(BM_Xxh64U64);

void BM_KIndexSelect(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  hash::KIndexSelector sel(k, 50'000, 3);
  std::array<std::uint64_t, hash::KIndexSelector::kMaxK> idx{};
  std::uint64_t flow = 0;
  for (auto _ : state) {
    sel.select(++flow, std::span<std::uint64_t>(idx.data(), k));
    benchmark::DoNotOptimize(idx);
  }
}
BENCHMARK(BM_KIndexSelect)->Arg(1)->Arg(3)->Arg(8);

// --- set-probe kernel shootout --------------------------------------------
// The innermost datapath loop (set_probe.hpp), tier by tier, over the
// associativities and hit mixes that matter: record BENCH_micro_ops.json
// in CI (--benchmark_out) to track kernel regressions. Arg order:
// (tier, ways, hit_pct). Unsupported tiers skip, so the suite is
// portable across hosts and -DCAESAR_SIMD=OFF builds.
template <cache::SimdTier Tier>
void probe_shootout(benchmark::State& state, unsigned ways,
                    unsigned hit_pct) {
  const unsigned ways_padded = (ways + 7) / 8 * 8;
  constexpr std::uint32_t kSets = 512;
  AlignedBuffer<std::uint64_t> tags(kSets * ways_padded);
  // Fully occupied sets with distinct tags; key 0 never stored.
  for (std::uint32_t s = 0; s < kSets; ++s)
    for (unsigned w = 0; w < ways_padded; ++w)
      tags[s * ways_padded + w] =
          w < ways ? (std::uint64_t{s} << 32 | (w + 1)) : 1;  // pad: no match
  const std::uint32_t occ =
      ways >= 32 ? ~std::uint32_t{0} : (std::uint32_t{1} << ways) - 1;

  // Precomputed (set, key) stream: hit_pct% of probes find their flow in
  // a rotating way, the rest miss after scanning every lane.
  constexpr std::size_t kStream = 4096;
  std::vector<std::uint32_t> sets(kStream);
  std::vector<std::uint64_t> keys(kStream);
  Xoshiro256pp rng(1234 + ways);
  for (std::size_t i = 0; i < kStream; ++i) {
    sets[i] = static_cast<std::uint32_t>(rng.below(kSets));
    const bool hit = rng.below(100) < hit_pct;
    keys[i] = hit ? tags[sets[i] * ways_padded + rng.below(ways)] : 0;
  }

  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache::kernels::probe<Tier>(
        tags.data() + std::size_t{sets[i]} * ways_padded, occ, ways_padded,
        keys[i]));
    i = (i + 1) % kStream;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_SetProbe(benchmark::State& state) {
  const auto tier = static_cast<cache::SimdTier>(state.range(0));
  const auto ways = static_cast<unsigned>(state.range(1));
  const auto hit_pct = static_cast<unsigned>(state.range(2));
  if (!cache::tier_supported(tier)) {
    state.SkipWithError("tier not supported on this host/build");
    return;
  }
  switch (tier) {
    case cache::SimdTier::kScalar:
      probe_shootout<cache::SimdTier::kScalar>(state, ways, hit_pct);
      break;
    case cache::SimdTier::kSse2:
      probe_shootout<cache::SimdTier::kSse2>(state, ways, hit_pct);
      break;
    case cache::SimdTier::kNeon:
      probe_shootout<cache::SimdTier::kNeon>(state, ways, hit_pct);
      break;
    case cache::SimdTier::kAvx2:
      probe_shootout<cache::SimdTier::kAvx2>(state, ways, hit_pct);
      break;
  }
}
BENCHMARK(BM_SetProbe)
    ->ArgNames({"tier", "ways", "hit_pct"})
    ->ArgsProduct({{0, 1, 2, 3}, {4, 8, 16}, {100, 50, 0}});

// End-to-end batched ingest per tier: the probe kernel in situ, with
// hashing, prefetch, and LRU bookkeeping around it.
void BM_CacheBatchByTier(benchmark::State& state) {
  const auto tier = static_cast<cache::SimdTier>(state.range(0));
  if (!cache::tier_supported(tier)) {
    state.SkipWithError("tier not supported on this host/build");
    return;
  }
  cache::CacheTable::Config cfg;
  cfg.num_entries = 16'384;
  cfg.entry_capacity = 54;
  cfg.simd = tier;
  cache::CacheTable cache(cfg);
  Xoshiro256pp rng(77);
  std::vector<FlowId> batch(8192);
  for (auto& f : batch) f = rng.below(20'000) + 1;
  cache::EvictionSink sink;
  for (auto _ : state) {
    cache.process_batch(batch, sink);
    sink.clear();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_CacheBatchByTier)
    ->ArgNames({"tier"})
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3);

void BM_CacheProcessHit(benchmark::State& state) {
  cache::CacheTable::Config cfg;
  cfg.num_entries = 1024;
  cfg.entry_capacity = 1'000'000'000;  // never overflow
  cache::CacheTable cache(cfg);
  cache.process(42);
  for (auto _ : state) benchmark::DoNotOptimize(cache.process(42));
}
BENCHMARK(BM_CacheProcessHit);

void BM_CacheProcessChurn(benchmark::State& state) {
  cache::CacheTable::Config cfg;
  cfg.num_entries = 1024;
  cfg.entry_capacity = 54;
  cache::CacheTable cache(cfg);
  Xoshiro256pp rng(1);
  for (auto _ : state)
    benchmark::DoNotOptimize(cache.process(rng.below(100'000)));
}
BENCHMARK(BM_CacheProcessChurn);

void BM_CaesarAdd(benchmark::State& state) {
  core::CaesarConfig cfg;
  cfg.cache_entries = 10'000;
  cfg.entry_capacity = 54;
  cfg.num_counters = 5'000;
  cfg.counter_bits = 15;
  core::CaesarSketch sketch(cfg);
  Xoshiro256pp rng(2);
  for (auto _ : state) sketch.add(rng.below(100'000));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CaesarAdd);

void BM_CaesarAddBatch(benchmark::State& state) {
  // The batched fast path (prefetch + spill queue + coalesced SRAM
  // writes); compare directly against BM_CaesarAdd per item.
  core::CaesarConfig cfg;
  cfg.cache_entries = 10'000;
  cfg.entry_capacity = 54;
  cfg.num_counters = 5'000;
  cfg.counter_bits = 15;
  core::CaesarSketch sketch(cfg);
  Xoshiro256pp rng(2);
  std::vector<FlowId> batch(8192);
  for (auto _ : state) {
    state.PauseTiming();
    for (auto& f : batch) f = rng.below(100'000);
    state.ResumeTiming();
    sketch.add_batch(batch);
  }
  sketch.drain_spill();
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_CaesarAddBatch);

void BM_RcsAdd(benchmark::State& state) {
  baselines::RcsConfig cfg;
  cfg.num_counters = 5'000;
  cfg.counter_bits = 15;
  baselines::RcsSketch sketch(cfg);
  Xoshiro256pp rng(3);
  for (auto _ : state) sketch.add(rng.below(100'000));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RcsAdd);

void BM_CaseAdd(benchmark::State& state) {
  baselines::CaseConfig cfg;
  cfg.cache_entries = 10'000;
  cfg.entry_capacity = 54;
  cfg.num_counters = 100'000;
  cfg.counter_bits = 10;
  baselines::CaseSketch sketch(cfg);
  Xoshiro256pp rng(4);
  for (auto _ : state) sketch.add(rng.below(100'000));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CaseAdd);

void BM_CaesarQueryCsm(benchmark::State& state) {
  core::CaesarConfig cfg;
  cfg.num_counters = 50'000;
  cfg.counter_bits = 15;
  core::CaesarSketch sketch(cfg);
  for (int i = 0; i < 100'000; ++i) sketch.add(static_cast<FlowId>(i % 997));
  sketch.flush();
  std::uint64_t f = 0;
  for (auto _ : state)
    benchmark::DoNotOptimize(sketch.estimate_csm(++f % 997));
}
BENCHMARK(BM_CaesarQueryCsm);

void BM_CaesarQueryMlm(benchmark::State& state) {
  core::CaesarConfig cfg;
  cfg.num_counters = 50'000;
  cfg.counter_bits = 15;
  core::CaesarSketch sketch(cfg);
  for (int i = 0; i < 100'000; ++i) sketch.add(static_cast<FlowId>(i % 997));
  sketch.flush();
  std::uint64_t f = 0;
  for (auto _ : state)
    benchmark::DoNotOptimize(sketch.estimate_mlm(++f % 997));
}
BENCHMARK(BM_CaesarQueryMlm);

void BM_CounterBraidsAdd(benchmark::State& state) {
  baselines::CounterBraidsConfig cfg;
  cfg.layer1_counters = 16'384;
  baselines::CounterBraids cb(cfg);
  Xoshiro256pp rng(5);
  for (auto _ : state) cb.add(rng.below(100'000));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterBraidsAdd);

void BM_VhcAdd(benchmark::State& state) {
  baselines::VhcConfig cfg;
  baselines::VirtualHyperLogLog vhc(cfg);
  Xoshiro256pp rng(6);
  for (auto _ : state) vhc.add(rng.below(100'000));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VhcAdd);

void BM_SacAdd(benchmark::State& state) {
  baselines::SacArray arr(65'536, baselines::SacConfig{}, 7);
  Xoshiro256pp rng(7);
  for (auto _ : state) arr.add(rng.below(100'000));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SacAdd);

void BM_CedarAdd(benchmark::State& state) {
  baselines::CedarArray arr(65'536, 12, 0.1, 8);
  Xoshiro256pp rng(8);
  for (auto _ : state) arr.add(rng.below(100'000));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CedarAdd);

void BM_SpaceSavingAdd(benchmark::State& state) {
  baselines::SpaceSaving ss(1024);
  Xoshiro256pp rng(9);
  for (auto _ : state) ss.add(rng.below(100'000));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpaceSavingAdd);

void BM_CounterArrayAdd(benchmark::State& state) {
  counters::CounterArray a(1u << 20, 15);
  Xoshiro256pp rng(10);
  for (auto _ : state) a.add(rng.below(1u << 20), 1);
}
BENCHMARK(BM_CounterArrayAdd);

void BM_PackedCounterArrayAdd(benchmark::State& state) {
  counters::PackedCounterArray a(1u << 20, 15);
  Xoshiro256pp rng(11);
  for (auto _ : state) a.add(rng.below(1u << 20), 1);
}
BENCHMARK(BM_PackedCounterArrayAdd);

void BM_AnonymizeIp(benchmark::State& state) {
  const trace::PrefixPreservingAnonymizer anon(12);
  std::uint32_t ip = 0x0A000001;
  for (auto _ : state) benchmark::DoNotOptimize(anon.anonymize(++ip));
}
BENCHMARK(BM_AnonymizeIp);

void BM_RcsQueryMlm(benchmark::State& state) {
  // The iterative search the paper calls "extremely slow".
  baselines::RcsConfig cfg;
  cfg.num_counters = 50'000;
  cfg.counter_bits = 15;
  baselines::RcsSketch sketch(cfg);
  for (int i = 0; i < 100'000; ++i) sketch.add(static_cast<FlowId>(i % 997));
  std::uint64_t f = 0;
  for (auto _ : state)
    benchmark::DoNotOptimize(sketch.estimate_mlm(++f % 997));
}
BENCHMARK(BM_RcsQueryMlm);

}  // namespace
