// Figure 5 — CASE accuracy under two SRAM budgets:
// (a/c) 183.11 KB -> 1-bit compressed counters: estimates collapse to ~0;
// (b/d) 1.21 MB -> 10-bit counters: a fraction of flows recover.
#include <cstdio>

#include "support.hpp"

int main() {
  using namespace caesar;
  const auto setup = bench::setup_from_env();
  const auto t = trace::generate_trace(setup.trace_accuracy);
  bench::print_banner("Figure 5: CASE accuracy under two SRAM budgets",
                      setup, t, setup.caesar_accuracy);

  struct Variant {
    const char* label;
    const baselines::CaseConfig* cfg;
  };
  const Variant variants[] = {
      {"Fig 5(a)/(c) CASE @ 183.11 KB budget (1-bit codes)",
       &setup.case_small},
      {"Fig 5(b)/(d) CASE @ 1.21 MB budget (10-bit codes)",
       &setup.case_large},
  };

  for (const auto& v : variants) {
    baselines::CaseSketch sketch(*v.cfg);
    bench::feed(t, sketch);
    sketch.flush();
    const auto eval =
        bench::evaluate_fn(t, [&](FlowId f) { return sketch.estimate(f); });
    std::printf("SRAM: L=%llu x %u bits = %.2f KB, stretch b=%.4g\n",
                static_cast<unsigned long long>(v.cfg->num_counters),
                v.cfg->counter_bits, sketch.sram().memory_kb(),
                sketch.function().b());
    bench::print_accuracy_panels(v.label, eval);
  }
  std::printf("[paper] Fig 5(a): estimates ~0, relative error ~100%%; "
              "Fig 5(b): slight improvement, most flows still bad.\n");
  std::printf("note: with 1-bit codes every flow is estimated as f(1)=1, "
              "so size-1 mice look exact while everything else collapses "
              "—\nsee the per-bin series above for the paper's \"all "
              "flows ~0\" effect on flows of size >= 2.\n");
  return 0;
}
