// Ablation — counters per flow (k). The paper fixes k=3 ("empirical
// shared counter schemes perform well when parameter k is not too big").
// Sweep k and report accuracy + modeled processing time to show why.
#include <cstdio>

#include "memsim/cost_model.hpp"
#include "support.hpp"

int main() {
  using namespace caesar;
  const auto setup = bench::setup_from_env();
  const auto t = trace::generate_trace(setup.trace_accuracy);
  bench::print_banner("Ablation: k (mapped counters per flow)", setup, t,
                      setup.caesar_accuracy);

  const auto model = memsim::virtex7_model();
  Table table({"k", "csm_err", "mlm_err", "time_ms", "theory_csm_var@mu"});
  for (std::size_t k = 1; k <= 8; ++k) {
    auto cfg = setup.caesar_accuracy;
    cfg.k = k;
    core::CaesarSketch sketch(cfg);
    bench::feed(t, sketch);
    sketch.flush();
    const auto csm = bench::evaluate_fn(
        t, [&](FlowId f) { return sketch.estimate_csm_raw(f); });
    const auto mlm = bench::evaluate_fn(
        t, [&](FlowId f) { return sketch.estimate_mlm_raw(f); });
    const double var = core::csm_variance(t.mean_flow_size(),
                                          sketch.estimator_params());
    table.add_row({std::to_string(k),
                   format_double(100.0 * csm.avg_relative_error, 2) + "%",
                   format_double(100.0 * mlm.avg_relative_error, 2) + "%",
                   format_double(model.time_ms(sketch.op_counts()), 2),
                   format_double(var, 2)});
  }
  std::printf("%s\n", table.to_ascii().c_str());
  std::printf("Eq. 22 predicts variance growth ~ k(k-1)^2: small k wins on "
              "theory-variance and time; k>=2 needed for sharing to\n"
              "average out hot counters. The paper's k=3 sits at the "
              "accuracy/time knee.\n");
  return 0;
}
