// Rotation pause shootout: how long does ingest stall when an epoch
// closes? The stop-the-world baseline (ShardedCaesar::rotate) blocks the
// caller for a full flush + snapshot + reset of every shard; a live
// session (rotate_live) stalls the ingest thread only for S marker
// pushes, with the flush and snapshot happening on the background
// finalizer. Both paths are driven over the same trace at the same epoch
// boundaries, and their published snapshots are cross-checked counter for
// counter — the speed comes from moving work off the hot path, never
// from changing results.
//
// Run: ./rotation_pause [--shards S] [--rotations R] [--flows Q]
//                       [--out FILE] [--metrics-out FILE] [--smoke]
// Exit status is nonzero if any snapshot mismatches, a timing is not
// finite and positive, or the mean live ingest stall is not under 10% of
// the mean stop-the-world pause (the headline claim of the live path).
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/metrics.hpp"
#include "core/sharded_caesar.hpp"
#include "trace/synthetic.hpp"

namespace {

using namespace caesar;
using clock_type = std::chrono::steady_clock;

core::CaesarConfig sketch_config() {
  core::CaesarConfig cfg;
  cfg.cache_entries = 100'000;
  cfg.entry_capacity = 54;
  cfg.num_counters = 500'000;
  cfg.counter_bits = 15;
  cfg.k = 3;
  cfg.seed = 1;
  return cfg;
}

double us_since(clock_type::time_point t0) {
  return std::chrono::duration<double, std::micro>(clock_type::now() - t0)
      .count();
}

struct StallStats {
  double mean_us = 0.0;
  double max_us = 0.0;
};

StallStats summarize(const std::vector<double>& samples) {
  StallStats s;
  for (double v : samples) {
    s.mean_us += v;
    s.max_us = std::max(s.max_us, v);
  }
  if (!samples.empty()) s.mean_us /= static_cast<double>(samples.size());
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const bool smoke = args.has("smoke");
  const std::size_t shards = args.get_u64("shards", 4);
  const std::size_t rotations = args.get_u64("rotations", smoke ? 4 : 8);

  trace::TraceConfig tc;
  tc.num_flows = args.get_u64("flows", smoke ? 5'000 : 50'000);
  tc.mean_flow_size = 27.32;
  tc.seed = 20180813;
  const auto trace = trace::generate_trace(tc);
  std::vector<FlowId> packets;
  packets.reserve(trace.num_packets());
  for (auto idx : trace.arrivals()) packets.push_back(trace.id_of(idx));
  const std::size_t window = packets.size() / rotations;

  std::printf(
      "workload: %zu packets, %zu flows, %zu shards, %zu rotations "
      "(%zu packets/epoch)\n",
      packets.size(), static_cast<std::size_t>(trace.num_flows()), shards,
      rotations, window);

  // --- stop-the-world baseline ------------------------------------------
  core::ShardedCaesar serial(sketch_config(), shards);
  std::vector<std::shared_ptr<const core::ShardedEpochSnapshot>>
      serial_snaps;
  std::vector<double> serial_us;
  for (std::size_t r = 0; r < rotations; ++r) {
    const std::span<const FlowId> epoch(packets.data() + r * window, window);
    for (FlowId f : epoch) serial.add(f);
    const auto t0 = clock_type::now();
    serial_snaps.push_back(serial.rotate());  // ingest blocked throughout
    serial_us.push_back(us_since(t0));
  }

  // --- live session ------------------------------------------------------
  core::ShardedCaesar live(sketch_config(), shards);
  core::LiveOptions options;
  options.max_epochs = 0;  // retain every epoch for the cross-check
  live.start_live(options);
  std::vector<double> live_us;
  for (std::size_t r = 0; r < rotations; ++r) {
    live.feed(std::span<const FlowId>(packets.data() + r * window, window));
    const auto t0 = clock_type::now();
    live.rotate_live();  // ingest stalls only for the marker pushes
    live_us.push_back(us_since(t0));
  }
  (void)live.wait_epoch(rotations - 1);  // finalizer caught up
  live.stop_live();

  // --- cross-check: identical boundaries -> identical snapshots ----------
  std::uint64_t mismatches = 0;
  for (std::size_t e = 0; e < rotations; ++e) {
    const auto& a = *serial_snaps[e];
    const auto b = live.snapshot_epoch(e);
    if (!b || b->shards() != a.shards() || b->packets() != a.packets()) {
      ++mismatches;
      continue;
    }
    for (std::size_t s = 0; s < a.shards(); ++s) {
      const auto& sa = a.shard(s).sram();
      const auto& sb = b->shard(s).sram();
      for (std::uint64_t i = 0; i < sa.size(); ++i)
        if (sa.peek(i) != sb.peek(i)) ++mismatches;
    }
  }

  const StallStats stw = summarize(serial_us);
  const StallStats lv = summarize(live_us);
  const double stall_ratio = lv.mean_us / stw.mean_us;

  std::printf("%-16s %14s %14s\n", "path", "mean_stall_us", "max_stall_us");
  std::printf("%-16s %14.1f %14.1f\n", "stop_the_world", stw.mean_us,
              stw.max_us);
  std::printf("%-16s %14.1f %14.1f\n", "live_rotation", lv.mean_us,
              lv.max_us);
  std::printf("ingest stall ratio (live/stop-the-world): %.4f "
              "(gate: < 0.10)\n",
              stall_ratio);
  std::printf("snapshot counter mismatches: %llu (must be 0)\n",
              static_cast<unsigned long long>(mismatches));

  bool ok = mismatches == 0;
  if (!(stw.mean_us > 0.0) || !(lv.mean_us >= 0.0)) ok = false;
  if (!(stall_ratio < 0.10)) ok = false;

  const std::string out_path = args.get_or("out", "BENCH_rotation_pause.json");
  std::ofstream out(out_path);
  out << "{\n  \"workload\": {\"packets\": " << packets.size()
      << ", \"flows\": " << trace.num_flows() << ", \"seed\": " << tc.seed
      << ", \"smoke\": " << (smoke ? "true" : "false") << "},\n"
      << "  \"shards\": " << shards << ",\n"
      << "  \"rotations\": " << rotations << ",\n"
      << "  \"stop_the_world\": {\"mean_us\": " << stw.mean_us
      << ", \"max_us\": " << stw.max_us << "},\n"
      << "  \"live\": {\"mean_us\": " << lv.mean_us
      << ", \"max_us\": " << lv.max_us << "},\n"
      << "  \"stall_ratio\": " << stall_ratio << ",\n"
      << "  \"counter_mismatches\": " << mismatches << "\n}\n";
  out.close();
  if (!out) {
    std::fprintf(stderr, "error: could not write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());

  // Observability snapshot: the live session's rotation instruments —
  // per-rotation ingest stall and marker-to-publish latency histograms,
  // standby misses, flush backlog high-water mark.
  metrics::MetricsSnapshot snap;
  live.collect_metrics(snap, "live_session.");
  const std::string metrics_path =
      args.get_or("metrics-out", "BENCH_rotation_pause_metrics.json");
  std::ofstream metrics_out(metrics_path);
  snap.write_json(metrics_out);
  metrics_out << "\n";
  metrics_out.close();
  if (!metrics_out) {
    std::fprintf(stderr, "error: could not write %s\n", metrics_path.c_str());
    return 1;
  }
  std::printf("wrote %s (metrics %s)\n", metrics_path.c_str(),
              metrics::kEnabled ? "enabled" : "disabled");

  return ok ? 0 : 1;
}
