// Baseline shootout — the §2 related-work survey as an experiment: every
// implemented scheme on one workload, reporting accuracy, memory and
// modeled hardware time. This is the quantitative version of the paper's
// qualitative comparisons (compression schemes waste resolution, sampling
// filters mice, braids/RCS pay per-packet off-chip costs, CAESAR's cache
// plus sharing wins on the combination).
#include <cmath>
#include <cstdio>

#include "baselines/braids/counter_braids.hpp"
#include "baselines/compressed/anls.hpp"
#include "baselines/compressed/cedar.hpp"
#include "baselines/compressed/small_active_counter.hpp"
#include "baselines/sampling/sampled_counting.hpp"
#include "baselines/sampling/space_saving.hpp"
#include "baselines/tree/counter_tree.hpp"
#include "baselines/vhc/virtual_hll.hpp"
#include "memsim/cost_model.hpp"
#include "support.hpp"

int main() {
  using namespace caesar;
  const auto setup = bench::setup_from_env();
  const auto t = trace::generate_trace(setup.trace_accuracy);
  bench::print_banner("Baseline shootout (§2 survey, quantified)", setup, t,
                      setup.caesar_accuracy);

  const auto model = memsim::virtex7_model();
  const auto q = t.num_flows();

  Table table({"scheme", "avg_rel_err", "err(x>=4)", "memory_kb",
               "model_ms", "notes"});
  auto add_row = [&](const char* name, const analysis::EvalResult& e,
                     double err4, double kb, double ms, const char* notes) {
    table.add_row({name,
                   format_double(100.0 * e.avg_relative_error, 1) + "%",
                   format_double(100.0 * err4, 1) + "%",
                   format_double(kb, 1), format_double(ms, 1), notes});
  };
  // Average relative error restricted to flows of size >= 4 (where the
  // 1-bit/compressed schemes can no longer hide behind exact mice).
  auto err_ge4 = [&](const analysis::EvalResult& e) {
    return bench::avg_error_at_least(e, 4);
  };

  {
    core::CaesarSketch s(setup.caesar_accuracy);
    bench::feed(t, s);
    s.flush();
    const auto e =
        bench::evaluate_fn(t, [&](FlowId f) { return s.estimate_csm(f); });
    add_row("CAESAR (CSM)", e, err_ge4(e), s.memory_kb(),
            model.time_ms(s.op_counts()), "this paper");
  }
  {
    baselines::RcsSketch s(setup.rcs_accuracy);
    bench::feed(t, s);
    const auto e = bench::evaluate_fn(
        t, [&](FlowId f) { return s.estimate_csm_raw(f); });
    add_row("RCS (lossless)", e, err_ge4(e), s.memory_kb(),
            model.time_ms(s.op_counts()), "per-pkt off-chip");
  }
  {
    baselines::LossyRcs s(setup.rcs_accuracy, 2.0 / 3.0);
    bench::feed(t, s);
    const auto e = bench::evaluate_fn(
        t, [&](FlowId f) { return s.estimate_csm_raw(f); });
    add_row("RCS (loss 2/3)", e, err_ge4(e), s.sketch().memory_kb(),
            model.time_ms(s.sketch().op_counts()), "realistic loss");
  }
  {
    baselines::CaseSketch s(setup.case_small);
    bench::feed(t, s);
    s.flush();
    const auto e =
        bench::evaluate_fn(t, [&](FlowId f) { return s.estimate(f); });
    add_row("CASE (1-bit)", e, err_ge4(e), s.memory_kb(),
            model.time_ms(s.op_counts()), "L>=Q squeeze");
  }
  {
    baselines::CounterBraidsConfig cfg;
    cfg.layer1_counters = 2 * q;  // above the k=3 decodability threshold
    cfg.layer1_bits = 8;
    cfg.layer2_counters = q / 4;
    cfg.seed = setup.caesar.seed ^ 0xCB;
    baselines::CounterBraids s(cfg);
    bench::feed(t, s);
    const auto est = s.decode(t.flow_ids());
    double total = 0.0;
    analysis::EvalResult e;  // assemble manually (joint decode)
    e.flows = q;
    std::vector<std::uint64_t> bin_flows;
    std::vector<double> bin_err;
    for (std::uint32_t i = 0; i < q; ++i) {
      const auto actual = static_cast<double>(t.size_of(i));
      const double rel = std::abs(std::max(est[i], 0.0) - actual) / actual;
      total += rel;
      const auto b = static_cast<std::size_t>(
          std::floor(std::log2(std::max(actual, 1.0))));
      if (b >= bin_flows.size()) {
        bin_flows.resize(b + 1, 0);
        bin_err.resize(b + 1, 0.0);
      }
      ++bin_flows[b];
      bin_err[b] += rel;
    }
    e.avg_relative_error = total / static_cast<double>(q);
    for (std::size_t b = 0; b < bin_flows.size(); ++b) {
      if (!bin_flows[b]) continue;
      analysis::ErrorBin eb;
      eb.lo = Count{1} << b;
      eb.flows = bin_flows[b];
      eb.avg_rel_error = bin_err[b] / static_cast<double>(bin_flows[b]);
      e.bins.push_back(eb);
    }
    add_row("Counter Braids", e, err_ge4(e), s.memory_kb(),
            model.time_ms(s.op_counts()), "joint decode only");
  }
  {
    baselines::SacConfig sc;
    sc.mantissa_bits = 8;
    sc.exponent_bits = 4;
    baselines::SacArray s(q, sc, setup.caesar.seed ^ 0x5AC);
    bench::feed(t, s);
    const auto e =
        bench::evaluate_fn(t, [&](FlowId f) { return s.estimate(f); });
    add_row("SAC (12-bit)", e, err_ge4(e), s.memory_kb(),
            model.time_ms(s.op_counts()), "1 ctr/flow, compress");
  }
  {
    auto s = baselines::AnlsArray::for_range(
        q, 12, static_cast<double>(setup.trace_accuracy.max_flow_size),
        setup.caesar.seed ^ 0xA72);
    bench::feed(t, s);
    const auto e =
        bench::evaluate_fn(t, [&](FlowId f) { return s.estimate(f); });
    add_row("ANLS (12-bit)", e, err_ge4(e), s.memory_kb(),
            model.time_ms(s.op_counts()), "geometric stretch");
  }
  {
    baselines::CedarArray s(q, 12, 0.1, setup.caesar.seed ^ 0xCED);
    bench::feed(t, s);
    const auto e =
        bench::evaluate_fn(t, [&](FlowId f) { return s.estimate(f); });
    add_row("CEDAR (12-bit)", e, err_ge4(e), s.memory_kb(),
            model.time_ms(s.op_counts()), "shared ladder");
  }
  {
    baselines::SampledCounting s(0.01, setup.caesar.seed ^ 0x5A);
    bench::feed(t, s);
    const auto e =
        bench::evaluate_fn(t, [&](FlowId f) { return s.estimate(f); });
    add_row("Sampling (1%)", e, err_ge4(e), s.memory_kb(),
            model.time_ms(s.op_counts()), "mice filtered");
  }
  {
    baselines::VhcConfig vc;
    vc.physical_registers = 1u << 18;  // Q*s/M ~ 10: dense regime
    vc.virtual_registers = 128;
    vc.seed = setup.caesar.seed ^ 0x54C;
    baselines::VirtualHyperLogLog s(vc);
    bench::feed(t, s);
    const auto e =
        bench::evaluate_fn(t, [&](FlowId f) { return s.estimate(f); });
    add_row("VHC (vHLL)", e, err_ge4(e), s.memory_kb(),
            model.time_ms(s.op_counts()), "register sharing");
  }
  {
    baselines::CounterTreeConfig cfg;
    cfg.leaves = 4 * q;  // leaf collisions rare
    cfg.leaf_bits = 8;   // carries rare at this load -> parents stay clean
    cfg.degree = 8;
    cfg.seed = setup.caesar.seed ^ 0x7EE;
    baselines::CounterTree s(cfg);
    bench::feed(t, s);
    const auto e =
        bench::evaluate_fn(t, [&](FlowId f) { return s.estimate(f); });
    add_row("Counter Tree", e, err_ge4(e), s.memory_kb(),
            model.time_ms(s.op_counts()), "1 leaf/flow: collisions");
  }
  {
    baselines::SpaceSaving s(2048);
    bench::feed(t, s);
    const auto e =
        bench::evaluate_fn(t, [&](FlowId f) { return s.estimate(f); });
    add_row("SpaceSaving 2k", e, err_ge4(e), s.memory_kb(),
            model.time_ms(s.op_counts()), "elephants only");
  }

  std::printf("%s\n", table.to_ascii().c_str());
  std::printf("Single-counter schemes (SAC/CEDAR/CASE) suffer hash\n"
              "collisions or quantization once L ~ Q; sampling erases the\n"
              "mice entirely; Counter Braids matches CAESAR's accuracy but\n"
              "pays k off-chip accesses per packet and only decodes the\n"
              "whole flow set jointly.\n");
  return 0;
}
