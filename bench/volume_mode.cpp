// Volume mode — the paper's §3.1 byte-counting claim, quantified:
// "The experiments in Section 6 show that the flow size and flow volume
// have almost the same distribution, except for the magnitude, so we
// only focus on the flow size."
//
// This bench (a) compares the size and volume distributions shape-wise
// (per-log-bin flow fractions after rescaling volume by the mean packet
// length) and (b) runs CAESAR in volume mode (weighted adds in 64-byte
// blocks) to show estimation quality carries over.
#include <cmath>
#include <cstdio>

#include "support.hpp"
#include "trace/trace_stats.hpp"

int main() {
  using namespace caesar;
  const auto setup = bench::setup_from_env();
  auto tc = setup.trace_accuracy;
  tc.generate_lengths = true;
  const auto t = trace::generate_trace(tc);
  bench::print_banner("Volume mode: bytes vs packets (§3.1)", setup, t,
                      setup.caesar_accuracy);

  // --- (a) distribution shapes ------------------------------------------
  const auto volumes = t.flow_volumes();
  Count total_bytes = 0;
  for (Count v : volumes) total_bytes += v;
  const double mean_len = static_cast<double>(total_bytes) /
                          static_cast<double>(t.num_packets());
  // Rescale volume to "packet equivalents" so the log bins align.
  std::vector<Count> volume_pkt_eq(volumes.size());
  for (std::size_t i = 0; i < volumes.size(); ++i)
    volume_pkt_eq[i] = static_cast<Count>(std::max(
        1.0, std::round(static_cast<double>(volumes[i]) / mean_len)));

  const auto size_bins = trace::size_distribution(t.flow_sizes());
  const auto vol_bins = trace::size_distribution(volume_pkt_eq);
  Table dist({"bin", "size_fraction", "volume_fraction(rescaled)"});
  double shape_gap = 0.0;
  const std::size_t rows = std::min(size_bins.size(), vol_bins.size());
  for (std::size_t b = 0; b < rows; ++b) {
    // Built via append: GCC 12's -O3 -Wrestrict misfires on the
    // char* + string&& overload.
    std::string bin = "[";
    bin += std::to_string(size_bins[b].lo);
    bin += ",";
    bin += std::to_string(size_bins[b].hi);
    bin += ")";
    dist.add_row({bin, format_double(size_bins[b].fraction, 5),
                  format_double(vol_bins[b].fraction, 5)});
    shape_gap +=
        std::abs(size_bins[b].fraction - vol_bins[b].fraction);
  }
  std::printf("%s\n", dist.to_ascii().c_str());
  std::printf("mean packet length = %.1f B; total-variation distance "
              "between the two (rescaled) distributions = %.4f\n"
              "[paper §3.1: \"almost the same distribution, except for "
              "the magnitude\"]\n\n",
              mean_len, shape_gap / 2.0);
  bench::export_csv("volume mode distributions", dist);

  // --- (b) CAESAR accuracy in volume mode -------------------------------
  // Counting 64-byte blocks multiplies the recorded mass (and therefore
  // the shared-counter noise k*units/L) by the mean block count per
  // packet (~8 here), so the counter budget must scale by the same
  // factor to stay in the same noise regime — the volume-mode sizing
  // rule this bench demonstrates.
  constexpr Count kBlock = 64;
  const auto blocks_per_packet =
      static_cast<std::uint64_t>(std::ceil(mean_len / kBlock));
  auto cfg = setup.caesar_accuracy;
  cfg.entry_capacity = 440;  // ~ 2 * mean volume in blocks
  cfg.counter_bits = 22;
  cfg.num_counters *= blocks_per_packet;
  core::CaesarSketch sketch(cfg);
  for (std::size_t i = 0; i < t.arrivals().size(); ++i)
    sketch.add_weighted(t.id_of(t.arrivals()[i]),
                        (t.lengths()[i] + kBlock / 2) / kBlock);
  sketch.flush();

  double total_rel = 0.0;
  for (std::uint32_t i = 0; i < t.num_flows(); ++i) {
    const auto actual = static_cast<double>(volumes[i]);
    const double est = std::max(
        sketch.estimate_csm(t.id_of(i)) * static_cast<double>(kBlock), 0.0);
    total_rel += std::abs(est - actual) / actual;
  }
  std::printf("CAESAR volume estimation (64-byte blocks): avg relative "
              "error = %.2f%% over %llu flows\n",
              100.0 * total_rel / static_cast<double>(t.num_flows()),
              static_cast<unsigned long long>(t.num_flows()));
  std::printf("(size-mode reference on the same geometry: see "
              "fig4_caesar_accuracy)\n");
  return 0;
}
