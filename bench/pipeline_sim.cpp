// Pipeline simulation — the event-level companion to Figs. 7 and 8.
//
// Instead of assuming the paper's empirical loss rates, this bench pushes
// the actual packet stream through memsim::QueueSimulator:
//   * RCS (cache-free): one off-chip RMW per packet. With SRAM 3x / 10x
//     slower than the line, the simulated drop rates must land on the
//     paper's 2/3 and 9/10.
//   * CAESAR: the cache front end runs at line rate; evictions feed an
//     asynchronous off-chip write queue. The bench sweeps the entry
//     capacity y and reports the eviction queue's sustainability — the
//     architectural reason CAESAR is lossless at the paper's y = 54 and
//     degenerates to RCS-like loss at y = 1.
#include <cstdio>

#include "memsim/datapath.hpp"
#include "memsim/pipeline.hpp"
#include "support.hpp"

int main() {
  using namespace caesar;
  const auto setup = bench::setup_from_env();
  const auto t = trace::generate_trace(setup.trace);
  bench::print_banner("Pipeline simulation: derived loss rates", setup, t,
                      setup.caesar);

  // --- RCS: derive the Fig. 7 loss rates --------------------------------
  std::printf("RCS per-packet off-chip update through a %u-deep FIFO:\n",
              1024u);
  Table rcs_table({"sram_cycles", "derived_loss", "paper_assumed"});
  for (const auto& [sram, paper] :
       {std::pair{3.0, "2/3"}, std::pair{10.0, "9/10"}}) {
    memsim::QueueConfig qc;
    qc.arrival_cycles = 1.0;
    qc.fifo_depth = 1024;
    memsim::QueueSimulator queue(qc);
    baselines::RcsSketch sketch(setup.rcs);
    for (auto idx : t.arrivals())
      if (queue.offer(sram)) sketch.add(t.id_of(idx));
    rcs_table.add_row({format_double(sram, 0),
                       format_double(queue.stats().loss_rate(), 4), paper});
  }
  std::printf("%s\n", rcs_table.to_ascii().c_str());

  // --- CAESAR: eviction-queue sustainability vs entry capacity ----------
  std::printf("CAESAR cache front end at line rate; evictions feed an\n"
              "async off-chip write queue (k=3 writes x 3-cycle QDRII+\n"
              "burst each). Sweep of entry capacity y:\n");
  Table caesar_table({"y", "evictions", "evict_per_pkt", "queue_loss",
                      "max_backlog"});
  for (Count y : {1u, 2u, 7u, 27u, 54u, 108u}) {
    auto cfg = setup.caesar;
    cfg.entry_capacity = y;
    core::CaesarSketch sketch(cfg);

    memsim::QueueConfig qc;
    qc.arrival_cycles = 1.0;  // unused: offers carry explicit times
    qc.fifo_depth = 1024;
    memsim::QueueSimulator evict_queue(qc);

    const double cycles_per_write = 3.0;  // QDRII+ burst write
    double clock = 0.0;
    std::uint64_t evictions = 0;
    std::uint64_t prev_sram = 0;
    for (auto idx : t.arrivals()) {
      sketch.add(t.id_of(idx));
      clock += 1.0;  // line rate
      const std::uint64_t sram = sketch.sram().writes();
      if (sram != prev_sram) {
        // This packet triggered eviction work: enqueue the write burst
        // (one service demand covering all counters it touched).
        ++evictions;
        evict_queue.offer_at(
            clock, cycles_per_write * static_cast<double>(sram - prev_sram));
        prev_sram = sram;
      }
    }
    caesar_table.add_row(
        {std::to_string(y), std::to_string(evictions),
         format_double(static_cast<double>(evictions) /
                           static_cast<double>(t.num_packets()),
                       4),
         format_double(evict_queue.stats().loss_rate(), 4),
         std::to_string(evict_queue.stats().max_backlog)});
  }
  std::printf("%s\n", caesar_table.to_ascii().c_str());
  std::printf("At the paper's y = 54 the eviction stream is far below the\n"
              "write queue's capacity (zero loss, shallow backlog); y = 1\n"
              "degenerates to a per-packet off-chip write and the queue\n"
              "sheds load exactly like cache-free RCS.\n\n");

  // --- cycle-level cross-check: structural datapath simulation ----------
  // Drive the per-cycle pipeline model with the real sketch's eviction
  // pattern at the paper's y; the event-level results above must be
  // confirmed at cycle granularity (line-rate throughput, no drops).
  {
    core::CaesarSketch sketch(setup.caesar);
    memsim::DatapathSimulator datapath(memsim::DatapathConfig{});
    std::uint64_t prev_sram = 0;
    for (auto idx : t.arrivals()) {
      sketch.add(t.id_of(idx));
      const std::uint64_t sram = sketch.sram().writes();
      datapath.step(static_cast<std::uint32_t>(sram - prev_sram));
      prev_sram = sram;
    }
    datapath.finish();
    const auto& s = datapath.stats();
    std::printf("cycle-level datapath (y=%llu): %.4f cycles/packet, "
                "drops %.4f%%, stalls %llu, FIFO high-water %llu, "
                "SRAM writes %llu\n",
                static_cast<unsigned long long>(
                    setup.caesar.entry_capacity),
                s.cycles_per_packet(), 100.0 * s.drop_rate(),
                static_cast<unsigned long long>(s.stall_cycles),
                static_cast<unsigned long long>(s.fifo_high_water),
                static_cast<unsigned long long>(s.counter_writes));
  }
  return 0;
}
