// Figure 4 — CAESAR accuracy: (a/b) estimated vs actual for CSM and MLM,
// (c/d) average relative error vs actual size, for both LRU and random
// replacement.
//
// Paper headline (§1.5): CSM 25.23% / MLM 30.83% average relative error.
// Those levels require the low-noise regime (see DESIGN.md §5 /
// EXPERIMENTS.md): the headline run below uses the noise-calibrated
// geometry; the paper-stated 91.55 KB budget is also run and reported for
// transparency.
#include <cstdio>

#include "support.hpp"

int main() {
  using namespace caesar;
  const auto setup = bench::setup_from_env();
  const auto t = trace::generate_trace(setup.trace_accuracy);
  bench::print_banner("Figure 4: CAESAR accuracy (CSM vs MLM)", setup, t,
                      setup.caesar_accuracy);

  for (const auto policy : {cache::ReplacementPolicy::kLru,
                            cache::ReplacementPolicy::kRandom}) {
    auto cfg = setup.caesar_accuracy;
    cfg.policy = policy;
    core::CaesarSketch sketch(cfg);
    bench::feed(t, sketch);
    sketch.flush();

    const char* pname =
        policy == cache::ReplacementPolicy::kLru ? "LRU" : "random";
    const auto csm = bench::evaluate_fn(
        t, [&](FlowId f) { return sketch.estimate_csm_raw(f); });
    bench::print_accuracy_panels(
        std::string("Fig 4(a)/(c) CAESAR-CSM, ") + pname + " replacement",
        csm);
    const auto mlm = bench::evaluate_fn(
        t, [&](FlowId f) { return sketch.estimate_mlm_raw(f); });
    bench::print_accuracy_panels(
        std::string("Fig 4(b)/(d) CAESAR-MLM, ") + pname + " replacement",
        mlm);

    std::printf("[paper] CSM avg rel err 25.23%% | MLM 30.83%% "
                "(measured above: CSM %.2f%% | MLM %.2f%%, %s)\n\n",
                100.0 * csm.avg_relative_error,
                100.0 * mlm.avg_relative_error, pname);
  }

  // Transparency run: the same workload under the literally stated
  // 91.55 KB budget, where per-counter noise mass is n/L >> mouse-flow
  // sizes — the regime in which no estimator can reach the paper's
  // error levels (EXPERIMENTS.md quantifies this).
  {
    auto cfg = setup.caesar;  // budget geometry
    core::CaesarSketch sketch(cfg);
    bench::feed(t, sketch);
    sketch.flush();
    const auto csm = bench::evaluate_fn(
        t, [&](FlowId f) { return sketch.estimate_csm_raw(f); });
    const auto g = analysis::describe(cfg);
    std::printf("[stated-budget transparency] SRAM %.2f KB (L=%llu): "
                "CSM avg rel err %.1f%% — noise-dominated as predicted\n",
                g.sram_kb,
                static_cast<unsigned long long>(cfg.num_counters),
                100.0 * csm.avg_relative_error);
  }
  return 0;
}
