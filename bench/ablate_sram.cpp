// Ablation — SRAM counter count L: the noise-regime explainer.
//
// This sweep connects the paper's two inconsistent claims (91.55 KB SRAM
// and 25% average relative error): the shared-counter noise mass per flow
// is k*n/L, so error collapses only once L approaches and passes n.
// CAESAR and lossless RCS are swept together; CAESAR's flexibility in L
// ("much more flexible than RCS in off-chip memory size", §1.4) shows as
// graceful degradation, while CASE needs L >= Q outright.
#include <cstdio>

#include "support.hpp"

int main() {
  using namespace caesar;
  const auto setup = bench::setup_from_env();
  const auto t = trace::generate_trace(setup.trace_accuracy);
  bench::print_banner("Ablation: SRAM counters (L)", setup, t,
                      setup.caesar_accuracy);

  const double n = static_cast<double>(t.num_packets());
  Table table({"L", "sram_kb", "k*n/L", "caesar_csm_err", "rcs_csm_err"});
  for (double counters_per_packet : {0.02, 0.1, 0.5, 1.0, 4.0, 18.0}) {
    auto cc = setup.caesar_accuracy;
    cc.num_counters = static_cast<std::uint64_t>(
        std::max(64.0, counters_per_packet * n));
    auto rc = setup.rcs_accuracy;
    rc.num_counters = cc.num_counters;

    core::CaesarSketch caesar_sketch(cc);
    baselines::RcsSketch rcs_sketch(rc);
    for (auto idx : t.arrivals()) {
      caesar_sketch.add(t.id_of(idx));
      rcs_sketch.add(t.id_of(idx));
    }
    caesar_sketch.flush();

    const auto ec = bench::evaluate_fn(
        t, [&](FlowId f) { return caesar_sketch.estimate_csm_raw(f); });
    const auto er = bench::evaluate_fn(
        t, [&](FlowId f) { return rcs_sketch.estimate_csm_raw(f); });
    table.add_row(
        {std::to_string(cc.num_counters),
         format_double(caesar_sketch.sram().memory_kb(), 1),
         format_double(3.0 * n / static_cast<double>(cc.num_counters), 2),
         format_double(100.0 * ec.avg_relative_error, 2) + "%",
         format_double(100.0 * er.avg_relative_error, 2) + "%"});
  }
  std::printf("%s\n", table.to_ascii().c_str());
  std::printf("The paper's stated budget sits at the top of this table "
              "(k*n/L in the hundreds -> mouse flows unrecoverable);\n"
              "its reported 25-30%% errors correspond to the bottom rows. "
              "Error decays smoothly with L for both sharing schemes —\n"
              "no L >= Q cliff like CASE's.\n");
  return 0;
}
