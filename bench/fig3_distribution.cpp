// Figure 3 — heavy-tailed distribution of flow sizes, plus the §6.1 trace
// summary (n packets, Q flows, mean size, fraction below the mean).
#include <cstdio>

#include "support.hpp"
#include "trace/trace_stats.hpp"

int main() {
  using namespace caesar;
  const auto setup = bench::setup_from_env();
  const auto t = trace::generate_trace(setup.trace);
  bench::print_banner("Figure 3: flow size distribution", setup, t,
                      setup.caesar);

  const auto s = trace::summarize(t.flow_sizes());
  std::printf("trace summary (paper §6.1: n=27,720,011 Q=1,014,601"
              " mean=27.3, >92%% of flows below mean):\n");
  std::printf("  Q (flows)            = %llu\n",
              static_cast<unsigned long long>(s.num_flows));
  std::printf("  n (packets)          = %llu\n",
              static_cast<unsigned long long>(s.num_packets));
  std::printf("  mean flow size       = %.2f\n", s.mean);
  std::printf("  fraction below mean  = %.2f%%\n",
              100.0 * s.fraction_below_mean);
  std::printf("  median / p99 / max   = %llu / %llu / %llu\n\n",
              static_cast<unsigned long long>(s.median),
              static_cast<unsigned long long>(s.p99),
              static_cast<unsigned long long>(s.max_size));

  Table hist({"size_bin", "flows", "fraction"});
  for (const auto& b : trace::size_distribution(t.flow_sizes())) {
    // Built via append: GCC 12's -O3 -Wrestrict misfires on the
    // char* + string&& overload.
    std::string bin = "[";
    bin += std::to_string(b.lo);
    bin += ",";
    bin += std::to_string(b.hi);
    bin += ")";
    hist.add_row({bin, std::to_string(b.flows), format_double(b.fraction, 5)});
  }
  std::printf("flow-size histogram (log2 bins — the Fig. 3 series):\n%s\n",
              hist.to_ascii().c_str());

  Table ccdf({"size", "P(X>=size)"});
  for (const auto& p : trace::ccdf_points(t.flow_sizes()))
    ccdf.add_row({std::to_string(p.size), format_double(p.ccdf, 6)});
  std::printf("complementary CDF (straight on log-log = heavy tail):\n%s",
              ccdf.to_ascii().c_str());
  return 0;
}
